// Command lbtheory evaluates the regenerative-process analysis of the
// two-node system: expected completion times, optimal LBP-1 gains, gain
// sweeps and completion-time distributions.
//
// Examples:
//
//	lbtheory -m0 100 -m1 60 -optimize
//	lbtheory -m0 100 -m1 60 -k 0.35 -sender 0
//	lbtheory -m0 100 -m1 60 -sweep 20
//	lbtheory -m0 50 -m1 0 -k 0.6 -cdf -tmax 200
//	lbtheory -m0 100 -m1 60 -optimize -nofail -delta 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"churnlb"
)

func main() {
	var (
		m0       = flag.Int("m0", 100, "initial tasks at node 0")
		m1       = flag.Int("m1", 60, "initial tasks at node 1")
		k        = flag.Float64("k", 0.35, "LB gain in [0,1]")
		sender   = flag.Int("sender", 0, "sending node (0 or 1)")
		delta    = flag.Float64("delta", 0.02, "mean transfer delay per task (s)")
		noFail   = flag.Bool("nofail", false, "zero the failure rates")
		optimize = flag.Bool("optimize", false, "search the optimal gain and sender")
		sweep    = flag.Int("sweep", 0, "evaluate a gain grid with this many steps")
		cdf      = flag.Bool("cdf", false, "print the completion-time CDF")
		tMax     = flag.Float64("tmax", 300, "CDF horizon (s)")
		dt       = flag.Float64("dt", 0.5, "CDF grid spacing (s)")
	)
	flag.Parse()

	sys := churnlb.PaperSystem().WithDelay(*delta)
	if *noFail {
		sys = sys.NoFailure()
	}

	switch {
	case *optimize:
		opt, err := churnlb.OptimizeLBP1(sys, *m0, *m1)
		die(err)
		fmt.Printf("workload (%d,%d): optimal sender node %d, K* = %.2f (%d tasks), E[T] = %.2f s\n",
			*m0, *m1, opt.Sender, opt.K, opt.Tasks, opt.Mean)
	case *sweep > 0:
		ks, means, err := churnlb.GainSweepLBP1(sys, *m0, *m1, *sender, *sweep)
		die(err)
		fmt.Println("K,mean_completion_s")
		for i := range ks {
			fmt.Printf("%.3f,%.3f\n", ks[i], means[i])
		}
	case *cdf:
		times, f, err := churnlb.CompletionCDF(sys, *m0, *m1, *sender, *k, *tMax, *dt)
		die(err)
		fmt.Println("t_s,F")
		for i := range times {
			fmt.Printf("%.3f,%.6f\n", times[i], f[i])
		}
	default:
		mean, err := churnlb.MeanCompletionLBP1(sys, *m0, *m1, *sender, *k)
		die(err)
		fmt.Printf("workload (%d,%d), sender %d, K = %.2f: E[T] = %.2f s\n", *m0, *m1, *sender, *k, mean)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbtheory:", err)
		os.Exit(1)
	}
}
