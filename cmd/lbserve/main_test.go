package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadFlagsRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-policy", "nonsense"}, &out, &errb, nil); code != 2 {
		t.Fatalf("unknown policy: exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", "nonsense"}, &out, &errb, nil); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2", code)
	}
	if code := run([]string{"-rate", "0"}, &out, &errb, nil); code != 1 {
		t.Fatalf("zero rate: exit %d, want 1", code)
	}
	if code := run([]string{"-queue", "nonsense"}, &out, &errb, nil); code != 2 {
		t.Fatalf("unknown queue backend: exit %d, want 2", code)
	}
}

// TestServeQueueBackendBitIdentical: the full serving report — latency
// percentiles, throughput, availability, utilization — must be
// byte-identical on every event-queue backend.
func TestServeQueueBackendBitIdentical(t *testing.T) {
	serve := func(backend string) string {
		t.Helper()
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", "hotspot", "-nodes", "40", "-policy", "jsq",
			"-rate", "50", "-horizon", "10", "-queue", backend}, &out, &errb, nil)
		if code != 0 {
			t.Fatalf("-queue %s: exit %d, stderr: %s", backend, code, errb.String())
		}
		return out.String()
	}
	if heap, cal := serve("heap"), serve("calendar"); heap != cal {
		t.Fatalf("backends diverged:\nheap:\n%s\ncalendar:\n%s", heap, cal)
	}
}

func TestServeRepsSmoke(t *testing.T) {
	base := []string{"-scenario", "uniform", "-nodes", "30", "-policy", "jsq",
		"-rate", "40", "-horizon", "10", "-reps", "5"}
	var out, errb bytes.Buffer
	if code := run(append(base, "-workers", "1"), &out, &errb, nil); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"reps 5", "p50", "pooled sojourn", "throughput", "availability"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// The estimate must not depend on the worker count.
	var out4 bytes.Buffer
	if code := run(append(base, "-workers", "4"), &out4, &errb, nil); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != out4.String() {
		t.Fatalf("-workers changed the report:\n%s\nvs\n%s", out.String(), out4.String())
	}
}

func TestServeSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", "hotspot", "-nodes", "40", "-policy", "pod2",
		"-rate", "50", "-horizon", "10"}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"scenario hotspot-n40", "p50", "p90", "p99", "throughput", "availability", "utilization"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestServeEveryPolicy(t *testing.T) {
	for _, pol := range []string{"uniform", "rr", "jsq", "pod2", "pod3", "lew", "dynlbp2"} {
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", "uniform", "-nodes", "20", "-policy", pol,
			"-rate", "20", "-horizon", "5"}, &out, &errb, nil)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", pol, code, errb.String())
		}
	}
}

func TestServeDiurnalWave(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", "diurnal", "-nodes", "20", "-policy", "lew",
		"-rate", "20", "-horizon", "20"}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenario diurnal-n20") {
		t.Fatalf("missing diurnal summary: %s", out.String())
	}
}

func TestServeWritesTimeSeries(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", "uniform", "-nodes", "20", "-policy", "jsq",
		"-rate", "20", "-horizon", "5", "-out", dir}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	b, err := os.ReadFile(filepath.Join(dir, "serve_timeseries.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "time,throughput,p99,queue_depth,in_flight,availability,fairness\n") {
		t.Fatalf("unexpected CSV header: %.80s", b)
	}
}

// TestServeInterrupted: a pre-closed interrupt channel is a SIGINT
// before the first arrival — the run drains, flushes the time series,
// skips the manifest, and still exits 0.
func TestServeInterrupted(t *testing.T) {
	dir := t.TempDir()
	closed := make(chan struct{})
	close(closed)
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", "uniform", "-nodes", "10", "-policy", "jsq",
		"-rate", "50", "-horizon", "30", "-out", dir,
		"-manifest", filepath.Join(dir, "run.json")}, &out, &errb, closed)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("no interruption note:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "serve_timeseries.csv")); err != nil {
		t.Fatalf("time series not flushed on interrupt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run.json")); err == nil {
		t.Fatal("interrupted run wrote a manifest (a cut arrival stream is not replayable)")
	}
}
