// Command lbserve runs the open-system serving layer: external tasks
// arrive as a Poisson (optionally diurnal-wave) stream against a
// generated cluster scenario, a dispatcher routing policy places each
// arrival, and fixed-memory telemetry reports per-task latency
// percentiles, throughput and availability.
//
// Examples:
//
//	lbserve -scenario hotspot -nodes 1000 -policy pod2 -rate 5000 -horizon 60
//	lbserve -scenario diurnal -nodes 100 -policy lew -rate 100 -horizon 120
//	lbserve -scenario correlated -nodes 200 -policy jsq -rate 200 -out results
//	lbserve -scenario uniform -nodes 500 -policy lew -rate 1000 -reps 20
//	lbserve -scenario hotspot -nodes 10000 -policy jsq -rate 50000 -queue calendar
//
// With -reps > 1 the replications fan out over the Monte-Carlo worker
// pool (capped by -workers; 0 = all CPUs) and the report shows means ±95%
// CI plus pooled latency percentiles — bit-identical for any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"churnlb"
	"churnlb/internal/metrics"
	"churnlb/internal/model"
	"churnlb/internal/report"
	"churnlb/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// systemFrom converts generated scenario params to the public System.
func systemFrom(p model.Params) churnlb.System {
	s := churnlb.System{DelayPerTask: p.DelayPerTask}
	for i := 0; i < p.N(); i++ {
		s.Nodes = append(s.Nodes, churnlb.Node{
			ProcRate: p.ProcRate[i], FailRate: p.FailRate[i], RecRate: p.RecRate[i],
		})
	}
	return s
}

// routerFor maps the -policy spelling to a router and balancing policy.
func routerFor(name string, k float64, d int) (churnlb.RouterSpec, churnlb.PolicySpec, error) {
	pol := churnlb.PolicySpec{Kind: churnlb.PolicyNone}
	switch name {
	case "uniform":
		return churnlb.RouterSpec{Kind: churnlb.RouterUniform}, pol, nil
	case "rr":
		return churnlb.RouterSpec{Kind: churnlb.RouterRoundRobin}, pol, nil
	case "jsq":
		return churnlb.RouterSpec{Kind: churnlb.RouterJSQ}, pol, nil
	case "pod2":
		return churnlb.RouterSpec{Kind: churnlb.RouterPowerOfD, D: 2}, pol, nil
	case "pod3":
		return churnlb.RouterSpec{Kind: churnlb.RouterPowerOfD, D: 3}, pol, nil
	case "lew":
		return churnlb.RouterSpec{Kind: churnlb.RouterLeastExpectedWork, D: d}, pol, nil
	case "dynlbp2":
		// The paper's dynamic extension: uniform dispatch, LBP-2
		// rebalancing at every arrival.
		return churnlb.RouterSpec{Kind: churnlb.RouterUniform},
			churnlb.PolicySpec{Kind: churnlb.PolicyDynamicLBP2, K: k}, nil
	default:
		return churnlb.RouterSpec{}, pol,
			fmt.Errorf("unknown policy %q (want uniform, rr, jsq, pod2, pod3, lew or dynlbp2)", name)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lbserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenStr = fs.String("scenario", "hotspot", "cluster scenario: uniform, hotspot, correlated, flashcrowd, diurnal")
		nodes   = fs.Int("nodes", 100, "node count")
		load    = fs.Int("load", 0, "scenario workload; the queued portion becomes the t = 0 backlog (any scenario-generated burst is superseded by -rate/-horizon)")
		polStr  = fs.String("policy", "pod2", "routing policy: uniform, rr, jsq, pod2, pod3, lew, dynlbp2")
		k       = fs.Float64("k", 1.0, "LB gain for dynlbp2")
		d       = fs.Int("d", 0, "lew sample size (0 = scan all nodes)")
		rate    = fs.Float64("rate", 100, "arrival rate, tasks/s")
		batch   = fs.Int("batch", 1, "tasks per arrival")
		horizon = fs.Float64("horizon", 60, "arrival window, s (the run then drains)")
		delta   = fs.Float64("delta", 0.02, "mean transfer delay per task, s")
		window  = fs.Float64("window", 0, "telemetry window, s (0 = horizon/100)")
		queue   = fs.String("queue", "heap", "event-queue backend: heap, calendar (alias wheel); results are bit-identical either way")
		seed    = fs.Uint64("seed", 1, "root seed")
		reps    = fs.Int("reps", 1, "replications; >1 aggregates a parallel Monte-Carlo estimate")
		workers = fs.Int("workers", 0, "worker goroutines for -reps (0 = GOMAXPROCS)")
		outDir  = fs.String("out", "", "directory for the telemetry time-series CSV ('' disables)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	kind, err := scenario.ParseKind(*scenStr)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	router, pol, err := routerFor(*polStr, *k, *d)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	eq, err := churnlb.ParseEventQueue(*queue)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	sc, err := scenario.Generate(scenario.Spec{
		Kind:         kind,
		N:            *nodes,
		TotalLoad:    *load,
		Seed:         *seed,
		DelayPerTask: *delta,
	})
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}

	opt := churnlb.ServeOptions{
		Rate:        *rate,
		Batch:       *batch,
		Horizon:     *horizon,
		InitialLoad: sc.InitialLoad,
		InitialUp:   sc.InitialUp,
		Window:      *window,
		EventQueue:  eq,
	}
	if kind == scenario.Diurnal {
		// The scenario supplies the wave shape when -load generated one;
		// otherwise default to two cycles across the horizon. The -rate
		// flag always sets the mean level.
		opt.WaveAmplitude, opt.WavePeriod = sc.WaveAmplitude, sc.WavePeriod
		if opt.WavePeriod <= 0 {
			opt.WaveAmplitude, opt.WavePeriod = 0.8, *horizon/2
		}
	}

	if *reps > 1 {
		if *outDir != "" {
			fmt.Fprintln(stderr, "lbserve: note: -out applies to single runs; no time-series CSV is written with -reps > 1")
		}
		opt.Workers = *workers
		est, err := churnlb.ServeMany(systemFrom(sc.Params), pol, router, *reps, *seed, opt)
		if err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "scenario %s policy %s rate %.4g/s horizon %.4gs delta %.4gs reps %d\n",
			sc.Name, *polStr, *rate, *horizon, *delta, *reps)
		fmt.Fprintf(stdout, "p50 %.3f ±%.3f s  p99 %.3f ±%.3f s  (means over %d completing replications)\n",
			est.P50.Mean, est.P50.CI95, est.P99.Mean, est.P99.CI95, est.N)
		fmt.Fprintf(stdout, "pooled sojourn p50 %.3f s  p90 %.3f s  p99 %.3f s  (all tasks, merged sketches)\n",
			est.PooledP50, est.PooledP90, est.PooledP99)
		fmt.Fprintf(stdout, "throughput %.2f ±%.2f /s  availability %.1f%% ±%.1f%%\n",
			est.Throughput.Mean, est.Throughput.CI95,
			100*est.Availability.Mean, 100*est.Availability.CI95)
		return 0
	}

	res, err := churnlb.Serve(systemFrom(sc.Params), pol, router, *seed, opt)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 1
	}

	fmt.Fprintf(stdout, "scenario %s policy %s rate %.4g/s horizon %.4gs delta %.4gs\n",
		sc.Name, *polStr, *rate, *horizon, *delta)
	if sc.ArrivalRate > 0 {
		// Flashcrowd/diurnal specs split -load into backlog + burst; the
		// serving stream comes from -rate/-horizon instead, so say what
		// happened to the rest.
		burst := *load - sc.TotalQueued()
		fmt.Fprintf(stdout, "note: %d of %d -load tasks queued at t=0; the scenario's ≈%d-task burst is superseded by the -rate stream\n",
			sc.TotalQueued(), *load, burst)
	}
	// Arrived already counts the initial backlog (the collector sees the
	// t = 0 queues as arrivals).
	fmt.Fprintf(stdout, "served %d of %d tasks in %.2f s (throughput %.2f/s)\n",
		res.Completed, res.Arrived, res.Duration, res.Throughput)
	fmt.Fprintf(stdout, "sojourn p50 %.3f s  p90 %.3f s  p99 %.3f s  (mean %.3f s, mean wait %.3f s)\n",
		res.P50, res.P90, res.P99, res.MeanSojourn, res.MeanWait)
	fmt.Fprintf(stdout, "availability %.1f%%  failures %d  recoveries %d  transfers %d (%d tasks)\n",
		100*res.Availability, res.Failures, res.Recoveries, res.TransfersSent, res.TasksTransferred)
	var meanU, maxU float64
	for _, u := range res.Utilization {
		meanU += u
		if u > maxU {
			maxU = u
		}
	}
	if n := len(res.Utilization); n > 0 {
		meanU /= float64(n)
	}
	fmt.Fprintf(stdout, "utilization mean %.1f%%  max %.1f%%  queue depth %.1f  in flight %.1f\n",
		100*meanU, 100*maxU, res.QueueDepth, res.InFlight)

	if *outDir != "" {
		path, err := report.SaveCSV(*outDir, "serve_timeseries.csv", func(w io.Writer) error {
			return report.WriteTimeSeriesCSV(w, metrics.ToTimeSeries(windowStats(res.Windows)))
		})
		if err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote: %s\n", path)
	}
	return 0
}

// windowStats converts the public window shape back to the telemetry
// one, so the CSV columns stay defined in exactly one place
// (metrics.ToTimeSeries).
func windowStats(ws []churnlb.ServeWindow) []metrics.WindowStats {
	out := make([]metrics.WindowStats, len(ws))
	for i, w := range ws {
		out[i] = metrics.WindowStats{
			Start:        w.Start,
			Width:        w.Width,
			Throughput:   w.Throughput,
			P99:          w.P99,
			QueueDepth:   w.QueueDepth,
			InFlight:     w.InFlight,
			Availability: w.Availability,
		}
	}
	return out
}
