// Command lbserve runs the open-system serving layer: external tasks
// arrive as a Poisson (optionally diurnal-wave) stream against a
// generated cluster scenario, a dispatcher routing policy places each
// arrival, and fixed-memory telemetry reports per-task latency
// percentiles, throughput, availability and fairness.
//
// Examples:
//
//	lbserve -scenario hotspot -nodes 1000 -policy pod2 -rate 5000 -horizon 60
//	lbserve -scenario diurnal -nodes 100 -policy lew -rate 100 -horizon 120
//	lbserve -scenario correlated -nodes 200 -policy jsq -rate 200 -out results
//	lbserve -scenario uniform -nodes 500 -policy lew -rate 1000 -reps 20
//	lbserve -scenario hotspot -nodes 100 -policy pod2 -decisions trace.jsonl -manifest run.json
//
// With -reps > 1 the replications fan out over the Monte-Carlo worker
// pool (capped by -workers; 0 = all CPUs) and the report shows means ±95%
// CI plus pooled latency percentiles — bit-identical for any worker count.
//
// -manifest writes a machine-readable run manifest (inputs, seeds,
// backends, summary metrics, decision-trace hash) from which
// `reproduce -manifest` re-runs and verifies the exact realisation;
// -decisions streams one JSONL decision record per routed arrival with
// counterfactual-k pricing of the router's untaken choices. The
// -cpuprofile, -memprofile and -tracefile flags capture pprof/runtime
// profiles of the run.
//
// SIGINT/SIGTERM interrupt a single run gracefully: the arrival stream
// stops, admitted work drains, the report and time-series CSV flush,
// and the process exits 0 (the manifest is skipped — a cut arrival
// stream is not replayable). A -reps sweep finishes its replications;
// a second signal kills the process immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"churnlb"
	"churnlb/internal/metrics"
	"churnlb/internal/obs"
	"churnlb/internal/obs/rerun"
	"churnlb/internal/report"
	"churnlb/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigChannel())) }

// sigChannel converts SIGINT/SIGTERM into the serving layer's Interrupt
// contract: the returned channel closes on the first signal.
func sigChannel() <-chan struct{} {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-ch
		signal.Stop(ch) // a second signal kills the process the hard way
		close(done)
	}()
	return done
}

func run(args []string, stdout, stderr io.Writer, interrupt <-chan struct{}) int {
	fs := flag.NewFlagSet("lbserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenStr = fs.String("scenario", "hotspot", "cluster scenario: uniform, hotspot, correlated, flashcrowd, diurnal")
		nodes   = fs.Int("nodes", 100, "node count")
		load    = fs.Int("load", 0, "scenario workload; the queued portion becomes the t = 0 backlog (any scenario-generated burst is superseded by -rate/-horizon)")
		polStr  = fs.String("policy", "pod2", "routing policy: uniform, rr, jsq, pod2, pod3, lew, dynlbp2")
		k       = fs.Float64("k", 1.0, "LB gain for dynlbp2")
		d       = fs.Int("d", 0, "lew sample size (0 = scan all nodes)")
		rate    = fs.Float64("rate", 100, "arrival rate, tasks/s")
		batch   = fs.Int("batch", 1, "tasks per arrival")
		horizon = fs.Float64("horizon", 60, "arrival window, s (the run then drains)")
		delta   = fs.Float64("delta", 0.02, "mean transfer delay per task, s")
		window  = fs.Float64("window", 0, "telemetry window, s (0 = horizon/100)")
		queue   = fs.String("queue", "heap", "event-queue backend: heap, calendar (alias wheel); results are bit-identical either way")
		shards  = fs.Int("shards", 0, "run each realisation on the domain-sharded parallel engine with up to this many workers (0 = single-stream engine; any positive count is bit-identical to any other; incompatible with -decisions)")
		seed    = fs.Uint64("seed", 1, "root seed")
		reps    = fs.Int("reps", 1, "replications; >1 aggregates a parallel Monte-Carlo estimate")
		workers = fs.Int("workers", 0, "worker goroutines for -reps (0 = GOMAXPROCS)")
		outDir  = fs.String("out", "", "directory for the telemetry time-series CSV ('' disables)")

		decisions = fs.String("decisions", "", "JSONL decision-trace output file ('' disables; single runs only)")
		counterK  = fs.Int("counterk", 0, "counterfactual candidates per decision record (0 = default 3)")
		manifest  = fs.String("manifest", "", "run-manifest JSON output file ('' disables)")
		cpuProf   = fs.String("cpuprofile", "", "CPU profile output file ('' disables)")
		memProf   = fs.String("memprofile", "", "heap profile output file ('' disables)")
		traceFile = fs.String("tracefile", "", "runtime execution-trace output file ('' disables)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	kind, err := scenario.ParseKind(*scenStr)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	router, pol, err := rerun.ServeSpecs(*polStr, *k, *d)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	eq, _, err := rerun.ParseQueue(*queue)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}
	if *decisions != "" && *reps > 1 {
		fmt.Fprintln(stderr, "lbserve: -decisions applies to single runs only (decision tracing is per-realisation)")
		return 2
	}
	sc, err := scenario.Generate(scenario.Spec{
		Kind:         kind,
		N:            *nodes,
		TotalLoad:    *load,
		Seed:         *seed,
		DelayPerTask: *delta,
	})
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 2
	}

	opt := churnlb.ServeOptions{
		Rate:        *rate,
		Batch:       *batch,
		Horizon:     *horizon,
		InitialLoad: sc.InitialLoad,
		InitialUp:   sc.InitialUp,
		Window:      *window,
		EventQueue:  eq,
		Shards:      *shards,
		Interrupt:   interrupt, // single runs only; a -reps sweep finishes
	}
	if kind == scenario.Diurnal {
		// The scenario supplies the wave shape when -load generated one;
		// otherwise default to two cycles across the horizon. The -rate
		// flag always sets the mean level.
		opt.WaveAmplitude, opt.WavePeriod = sc.WaveAmplitude, sc.WavePeriod
		if opt.WavePeriod <= 0 {
			opt.WaveAmplitude, opt.WavePeriod = 0.8, *horizon/2
		}
	}

	prof, err := obs.StartProfiles(*cpuProf, *memProf, *traceFile)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 1
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(stderr, "lbserve: profile:", err)
		}
	}()

	// The manifest records the run's resolved inputs (post-defaulting
	// wave shape included, so a replay never re-derives it) plus the
	// summary metrics filled in below.
	var man *obs.Manifest
	if *manifest != "" {
		mode := obs.ModeServe
		if *reps > 1 {
			mode = obs.ModeServeMany
		}
		man = obs.NewManifest("lbserve", mode)
		man.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		man.Seed = *seed
		man.Scenario = &obs.ScenarioRef{Kind: kind.String(), Nodes: *nodes, Load: *load, Delta: *delta}
		man.Policy = obs.PolicyRef{Name: *polStr, K: *k, D: *d}
		man.Queue = *queue
		man.Shards = *shards
		man.Rate = *rate
		man.Batch = *batch
		man.Horizon = *horizon
		man.Window = *window
		man.WaveAmplitude = opt.WaveAmplitude
		man.WavePeriod = opt.WavePeriod
	}
	saveManifest := func() int {
		if man == nil {
			return 0
		}
		if err := man.Save(*manifest); err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote: %s\n", *manifest)
		return 0
	}

	if *reps > 1 {
		if *outDir != "" {
			fmt.Fprintln(stderr, "lbserve: note: -out applies to single runs; no time-series CSV is written with -reps > 1")
		}
		opt.Workers = *workers
		est, err := churnlb.ServeMany(systemFrom(sc.Params), pol, router, *reps, *seed, opt)
		if err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "scenario %s policy %s rate %.4g/s horizon %.4gs delta %.4gs reps %d\n",
			sc.Name, *polStr, *rate, *horizon, *delta, *reps)
		fmt.Fprintf(stdout, "p50 %.3f ±%.3f s  p99 %.3f ±%.3f s  (means over %d completing replications)\n",
			est.P50.Mean, est.P50.CI95, est.P99.Mean, est.P99.CI95, est.N)
		fmt.Fprintf(stdout, "pooled sojourn p50 %.3f s  p90 %.3f s  p99 %.3f s  (all tasks, merged sketches)\n",
			est.PooledP50, est.PooledP90, est.PooledP99)
		fmt.Fprintf(stdout, "throughput %.2f ±%.2f /s  availability %.1f%% ±%.1f%%  pooled fairness %.3f\n",
			est.Throughput.Mean, est.Throughput.CI95,
			100*est.Availability.Mean, 100*est.Availability.CI95, est.PooledFairness)
		if man != nil {
			man.Reps = *reps
			man.Workers = *workers
			man.Metrics = rerun.ServeManyMetrics(est)
		}
		return saveManifest()
	}

	if *decisions != "" {
		f, err := os.Create(*decisions)
		if err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		defer f.Close()
		opt.TraceDecisions = true
		opt.DecisionK = *counterK
		opt.DecisionLog = f
	}

	res, err := churnlb.Serve(systemFrom(sc.Params), pol, router, *seed, opt)
	if err != nil {
		fmt.Fprintln(stderr, "lbserve:", err)
		return 1
	}

	fmt.Fprintf(stdout, "scenario %s policy %s rate %.4g/s horizon %.4gs delta %.4gs\n",
		sc.Name, *polStr, *rate, *horizon, *delta)
	if sc.ArrivalRate > 0 {
		// Flashcrowd/diurnal specs split -load into backlog + burst; the
		// serving stream comes from -rate/-horizon instead, so say what
		// happened to the rest.
		burst := *load - sc.TotalQueued()
		fmt.Fprintf(stdout, "note: %d of %d -load tasks queued at t=0; the scenario's ≈%d-task burst is superseded by the -rate stream\n",
			sc.TotalQueued(), *load, burst)
	}
	// Arrived already counts the initial backlog (the collector sees the
	// t = 0 queues as arrivals).
	fmt.Fprintf(stdout, "served %d of %d tasks in %.2f s (throughput %.2f/s)\n",
		res.Completed, res.Arrived, res.Duration, res.Throughput)
	fmt.Fprintf(stdout, "sojourn p50 %.3f s  p90 %.3f s  p99 %.3f s  (mean %.3f s, mean wait %.3f s)\n",
		res.P50, res.P90, res.P99, res.MeanSojourn, res.MeanWait)
	fmt.Fprintf(stdout, "availability %.1f%%  failures %d  recoveries %d  transfers %d (%d tasks)\n",
		100*res.Availability, res.Failures, res.Recoveries, res.TransfersSent, res.TasksTransferred)
	var meanU, maxU float64
	for _, u := range res.Utilization {
		meanU += u
		if u > maxU {
			maxU = u
		}
	}
	if n := len(res.Utilization); n > 0 {
		meanU /= float64(n)
	}
	fmt.Fprintf(stdout, "utilization mean %.1f%%  max %.1f%%  queue depth %.1f  in flight %.1f  fairness %.3f\n",
		100*meanU, 100*maxU, res.QueueDepth, res.InFlight, res.Fairness)
	if st := res.Decisions; st != nil {
		fmt.Fprintf(stdout, "decisions %d (unmatched %d)  counterfactual k=%d  mean regret %.4f s  misroutes %.1f%%  hash %s\n",
			st.Records, st.Unmatched, st.K, st.MeanRegret, 100*st.MisrouteFrac, obs.HashString(st.Hash))
		if *decisions != "" {
			fmt.Fprintf(stdout, "wrote: %s\n", *decisions)
		}
	}

	if *outDir != "" {
		path, err := report.SaveCSV(*outDir, "serve_timeseries.csv", func(w io.Writer) error {
			return report.WriteTimeSeriesCSV(w, metrics.ToTimeSeries(windowStats(res.Windows)))
		})
		if err != nil {
			fmt.Fprintln(stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote: %s\n", path)
	}
	if res.Interrupted {
		// Everything admitted drained and the report above is complete,
		// but the realisation is not the one the inputs describe: no
		// manifest, exit clean.
		fmt.Fprintln(stdout, "lbserve: interrupted — drained admitted work; manifest skipped (a cut arrival stream is not replayable)")
		return 0
	}
	if man != nil {
		man.Metrics = rerun.ServeMetrics(res)
		if res.Decisions != nil {
			man.SetDecisions(*res.Decisions)
		}
	}
	return saveManifest()
}

// systemFrom converts generated scenario params to the public System
// (shared with the manifest replayer, so the conversion cannot drift).
var systemFrom = rerun.SystemFrom

// windowStats converts the public window shape back to the telemetry
// one, so the CSV columns stay defined in exactly one place
// (metrics.ToTimeSeries).
func windowStats(ws []churnlb.ServeWindow) []metrics.WindowStats {
	out := make([]metrics.WindowStats, len(ws))
	for i, w := range ws {
		out[i] = metrics.WindowStats{
			Start:        w.Start,
			Width:        w.Width,
			Throughput:   w.Throughput,
			P99:          w.P99,
			QueueDepth:   w.QueueDepth,
			InFlight:     w.InFlight,
			Availability: w.Availability,
			Fairness:     w.Fairness,
		}
	}
	return out
}
