package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"churnlb/internal/obs"
	"churnlb/internal/obs/rerun"
)

// TestManifestReplaysExactly is the emitter/replayer drift gate for the
// serving CLI: single-run (with a decision trace) and sweep manifests
// must replay bit-for-bit via rerun.Run, decision hash included.
func TestManifestReplaysExactly(t *testing.T) {
	dir := t.TempDir()

	t.Run(obs.ModeServe, func(t *testing.T) {
		mpath := filepath.Join(dir, "serve.json")
		dpath := filepath.Join(dir, "serve.jsonl")
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", "hotspot", "-nodes", "16", "-load", "200",
			"-policy", "lew", "-rate", "30", "-horizon", "4", "-seed", "12",
			"-decisions", dpath, "-counterk", "2", "-manifest", mpath}, &out, &errb, nil)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		m, err := obs.LoadManifest(mpath)
		if err != nil {
			t.Fatal(err)
		}
		if m.Decisions == nil || m.Decisions.K != 2 || m.Decisions.Records == 0 {
			t.Fatalf("manifest decisions block: %+v", m.Decisions)
		}
		var replayed bytes.Buffer
		rep, err := rerun.Run(m, &replayed)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("manifest did not replay: diffs %v missing %v extra %v hash %q vs %q",
				rep.Diffs, rep.Missing, rep.Extra, rep.HashWant, rep.HashGot)
		}
		orig, err := os.ReadFile(dpath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(orig, replayed.Bytes()) {
			t.Fatalf("replayed decision stream differs (%d vs %d bytes)", len(orig), replayed.Len())
		}
	})

	t.Run(obs.ModeServeMany, func(t *testing.T) {
		mpath := filepath.Join(dir, "sweep.json")
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", "uniform", "-nodes", "10", "-load", "100",
			"-policy", "pod2", "-rate", "20", "-horizon", "3", "-reps", "6", "-seed", "2",
			"-manifest", mpath}, &out, &errb, nil)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		m, err := obs.LoadManifest(mpath)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rerun.Run(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("sweep manifest did not replay: diffs %v missing %v extra %v",
				rep.Diffs, rep.Missing, rep.Extra)
		}
	})
}

// TestDecisionsRejectedForSweeps: decision tracing is single-run only.
func TestDecisionsRejectedForSweeps(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", "uniform", "-nodes", "8", "-load", "50",
		"-policy", "jsq", "-rate", "10", "-horizon", "2", "-reps", "3",
		"-decisions", filepath.Join(t.TempDir(), "d.jsonl")}, &out, &errb, nil)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "single") {
		t.Fatalf("stderr does not explain the restriction: %s", errb.String())
	}
}
