package churnlb

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestPaperSystemShape(t *testing.T) {
	s := PaperSystem()
	if len(s.Nodes) != 2 {
		t.Fatalf("nodes %d", len(s.Nodes))
	}
	if s.Nodes[0].ProcRate != 1.08 || s.Nodes[1].ProcRate != 1.86 {
		t.Fatalf("rates %+v", s.Nodes)
	}
	if s.DelayPerTask != 0.02 {
		t.Fatalf("delay %v", s.DelayPerTask)
	}
}

func TestOptimizeLBP1Facade(t *testing.T) {
	opt, err := OptimizeLBP1(PaperSystem(), 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sender != 0 || math.Abs(opt.K-0.35) > 0.05 || math.Abs(opt.Mean-117) > 3 {
		t.Fatalf("optimum %+v, want sender 0, K≈0.35, mean≈117", opt)
	}
	// No-failure optimum uses a bigger gain.
	optNF, err := OptimizeLBP1(PaperSystem().NoFailure(), 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	if optNF.K <= opt.K {
		t.Fatalf("no-failure K %v must exceed failure K %v", optNF.K, opt.K)
	}
}

func TestMeanCompletionLBP1Facade(t *testing.T) {
	mean, err := MeanCompletionLBP1(PaperSystem(), 100, 60, 0, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-116.75) > 0.5 {
		t.Fatalf("mean %v, want ≈116.75", mean)
	}
	if _, err := MeanCompletionLBP1(PaperSystem(), 100, 60, 9, 0.35); err == nil {
		t.Fatal("invalid sender accepted")
	}
}

func TestGainSweepFacade(t *testing.T) {
	ks, means, err := GainSweepLBP1(PaperSystem(), 100, 60, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 11 || len(means) != 11 {
		t.Fatalf("sweep sizes %d/%d", len(ks), len(means))
	}
}

func TestCompletionCDFFacade(t *testing.T) {
	times, f, err := CompletionCDF(PaperSystem(), 50, 0, 0, 0.6, 200, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(f) || len(f) == 0 {
		t.Fatalf("CDF sizes %d/%d", len(times), len(f))
	}
	if f[len(f)-1] < 0.99 {
		t.Fatalf("CDF does not approach 1: %v", f[len(f)-1])
	}
}

func TestLBP2InitialGainFacade(t *testing.T) {
	k, err := LBP2InitialGain(PaperSystem(), 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.8 || k > 1 {
		t.Fatalf("LBP-2 gain %v, expected near 1 at small delay", k)
	}
}

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(PaperSystem(), PolicySpec{Kind: PolicyLBP2, K: 1}, []int{100, 60}, 42, SimOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed[0]+res.Processed[1] != 160 {
		t.Fatalf("conservation: %v", res.Processed)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace missing")
	}
}

func TestSimulateInvalidPolicy(t *testing.T) {
	if _, err := Simulate(PaperSystem(), PolicySpec{Kind: PolicyKind(99)}, []int{1, 1}, 1, SimOptions{}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestMonteCarloFacadeMatchesTheory(t *testing.T) {
	est, err := MonteCarlo(PaperSystem(), PolicySpec{Kind: PolicyLBP1, K: 0.35, Sender: 0}, []int{100, 60}, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-116.75) > 4*est.CI95 {
		t.Fatalf("MC mean %v ±%v vs theory 116.75", est.Mean, est.CI95)
	}
}

func TestMultiNodeSimulateFacade(t *testing.T) {
	s := System{
		Nodes: []Node{
			{ProcRate: 2.0, RecRate: 1},
			{ProcRate: 1.0, FailRate: 0.05, RecRate: 0.1},
			{ProcRate: 1.5, FailRate: 0.05, RecRate: 0.1},
		},
		DelayPerTask: 0.02,
	}
	res, err := Simulate(s, PolicySpec{Kind: PolicyLBP1Multi, K: 1}, []int{90, 0, 0}, 5, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Processed {
		total += p
	}
	if total != 90 {
		t.Fatalf("conservation: %v", res.Processed)
	}
	if res.TasksTransferred == 0 {
		t.Fatal("multi-node policy moved nothing")
	}
}

func TestRunTestbedFacade(t *testing.T) {
	res, err := RunTestbed(PaperSystem(), PolicySpec{Kind: PolicyLBP2, K: 1}, []int{40, 20}, 3,
		TestbedOptions{TimeScale: 4000, MaxWall: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed[0]+res.Processed[1] != 60 {
		t.Fatalf("conservation: %v", res.Processed)
	}
}

func TestSystemValidationSurfacing(t *testing.T) {
	bad := System{Nodes: []Node{{ProcRate: -1}}}
	if _, err := OptimizeLBP1(bad, 1, 1); err == nil {
		t.Fatal("invalid system accepted by OptimizeLBP1")
	}
	if _, err := Simulate(bad, PolicySpec{}, []int{1}, 1, SimOptions{}); err == nil {
		t.Fatal("invalid system accepted by Simulate")
	}
	three := System{Nodes: make([]Node, 3), DelayPerTask: 0.02}
	for i := range three.Nodes {
		three.Nodes[i] = Node{ProcRate: 1}
	}
	if _, err := OptimizeLBP1(three, 1, 1); err == nil {
		t.Fatal("3-node system accepted by 2-node analytical API")
	}
}

func TestServeReportsLatencyPercentiles(t *testing.T) {
	res, err := Serve(PaperSystem(), PolicySpec{Kind: PolicyLBP2, K: 1},
		RouterSpec{Kind: RouterLeastExpectedWork}, 5,
		ServeOptions{Rate: 2, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed != res.Arrived {
		t.Fatalf("served %d of %d tasks", res.Completed, res.Arrived)
	}
	if !(res.P50 > 0 && res.P50 <= res.P90 && res.P90 <= res.P99) {
		t.Fatalf("percentiles not ordered: p50 %v p90 %v p99 %v", res.P50, res.P90, res.P99)
	}
	if res.MeanSojourn <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate summary: %+v", res)
	}
	if !(res.Availability > 0 && res.Availability <= 1) {
		t.Fatalf("availability %v", res.Availability)
	}
	if len(res.Utilization) != 2 {
		t.Fatalf("utilization entries %d, want 2", len(res.Utilization))
	}
	for i, u := range res.Utilization {
		if u < 0 || u > 1.0001 {
			t.Fatalf("utilization[%d] = %v", i, u)
		}
	}
	if len(res.Windows) == 0 {
		t.Fatal("no telemetry windows")
	}
}

func TestServeIsDeterministic(t *testing.T) {
	run := func() ServeResult {
		res, err := Serve(PaperSystem(), PolicySpec{Kind: PolicyNone},
			RouterSpec{Kind: RouterPowerOfD, D: 2}, 11,
			ServeOptions{Rate: 3, Horizon: 30, WaveAmplitude: 0.5, WavePeriod: 15})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.P99 != b.P99 || a.Duration != b.Duration {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(PaperSystem(), PolicySpec{}, RouterSpec{}, 1, ServeOptions{}); err == nil {
		t.Fatal("rate/horizon 0 accepted")
	}
	if _, err := Serve(PaperSystem(), PolicySpec{}, RouterSpec{Kind: RouterKind(99)}, 1,
		ServeOptions{Rate: 1, Horizon: 1}); err == nil {
		t.Fatal("unknown router accepted")
	}
	if _, err := ServeMany(PaperSystem(), PolicySpec{}, RouterSpec{}, 0, 1,
		ServeOptions{Rate: 1, Horizon: 1}); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestServeManyAggregates(t *testing.T) {
	est, err := ServeMany(PaperSystem(), PolicySpec{Kind: PolicyLBP2, K: 1},
		RouterSpec{Kind: RouterJSQ}, 8, 2, ServeOptions{Rate: 2, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 8 {
		t.Fatalf("aggregated %d reps, want 8", est.N)
	}
	if !(est.P50.Mean > 0 && est.P99.Mean >= est.P50.Mean) {
		t.Fatalf("estimate not ordered: %+v", est)
	}
	if !(est.PooledP50 > 0 && est.PooledP99 >= est.PooledP90 && est.PooledP90 >= est.PooledP50) {
		t.Fatalf("pooled percentiles not ordered: %+v", est)
	}
}

// TestServeManyWorkerCountIndependent is the parallel-determinism
// contract: the same seed and reps must produce a bit-identical
// ServeEstimate — per-rep statistics and pooled sketches alike — no
// matter how many workers executed the replications.
func TestServeManyWorkerCountIndependent(t *testing.T) {
	run := func(workers int) ServeEstimate {
		est, err := ServeMany(PaperSystem(), PolicySpec{Kind: PolicyLBP2, K: 1},
			RouterSpec{Kind: RouterLeastExpectedWork}, 9, 5,
			ServeOptions{Rate: 2, Horizon: 30, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	base := run(1)
	for _, workers := range []int{2, 4, 16} {
		if got := run(workers); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, base)
		}
	}
}

func TestMonteCarloOptsLaws(t *testing.T) {
	sys := PaperSystem()
	spec := PolicySpec{Kind: PolicyLBP2, K: 1}
	base, err := MonteCarloOpts(sys, spec, []int{40, 20}, 40, 9, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := MonteCarloOpts(sys, spec, []int{40, 20}, 40, 9,
		SimOptions{TransferMode: TransferPerTask, ChurnLaw: ChurnWeibull})
	if err != nil {
		t.Fatal(err)
	}
	if base.Mean == alt.Mean {
		t.Fatal("alternative laws produced identical estimates — flags not wired through")
	}
	if _, err := MonteCarloOpts(sys, spec, []int{1, 1}, 1, 1, SimOptions{ChurnLaw: ChurnLaw(9)}); err == nil {
		t.Fatal("unknown churn law accepted")
	}
}
