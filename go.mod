module churnlb

go 1.24
