// Crossover: the paper's Table 3 finding, reproduced as a sweep. When
// the per-task transfer delay is small, reacting to failures (LBP-2)
// wins; when transfers are slow relative to recovery times, paying the
// transfer cost at every failure instant is wasteful and the one-shot
// preemptive policy (LBP-1) takes over.
//
// Run: go run ./examples/crossover
package main

import (
	"fmt"
	"log"

	"churnlb"
)

func main() {
	const m0, m1 = 100, 60
	fmt.Println("workload (100,60); LBP-1 gain optimised per delay (failure-aware),")
	fmt.Println("LBP-2 gain optimised per delay under the no-failure model (as in the paper)")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %s\n", "δ (s)", "LBP-1 (s)", "LBP-2 (s)", "winner")
	for _, delta := range []float64{0.01, 0.1, 0.5, 1, 2, 3} {
		sys := churnlb.PaperSystem().WithDelay(delta)

		opt, err := churnlb.OptimizeLBP1(sys, m0, m1)
		if err != nil {
			log.Fatal(err)
		}
		lbp1, err := churnlb.MonteCarlo(sys,
			churnlb.PolicySpec{Kind: churnlb.PolicyLBP1, K: opt.K, Sender: opt.Sender},
			[]int{m0, m1}, 3000, 11)
		if err != nil {
			log.Fatal(err)
		}

		k2, err := churnlb.LBP2InitialGain(sys, m0, m1)
		if err != nil {
			log.Fatal(err)
		}
		lbp2, err := churnlb.MonteCarlo(sys,
			churnlb.PolicySpec{Kind: churnlb.PolicyLBP2, K: k2}, []int{m0, m1}, 3000, 11)
		if err != nil {
			log.Fatal(err)
		}

		winner := "LBP-2 (react)"
		if lbp1.Mean < lbp2.Mean {
			winner = "LBP-1 (preempt)"
		}
		fmt.Printf("%8.2f  %7.2f ±%4.2f  %7.2f ±%4.2f  %s\n",
			delta, lbp1.Mean, lbp1.CI95, lbp2.Mean, lbp2.CI95, winner)
	}
	fmt.Println()
	fmt.Println("the ordering flips near δ ≈ 1 s — the paper's Table 3 crossover.")
}
