// Volunteer computing: the SETI@home-style scenario that motivates the
// paper's introduction. A dedicated server receives a batch of work and
// may offload to volunteer desktops that are fast but keep going offline
// (owner activity, crashes). How much work should it push to them?
//
// Run: go run ./examples/volunteer
package main

import (
	"fmt"
	"log"

	"churnlb"
)

func main() {
	// One dedicated server (never fails) and three volunteers with
	// increasing speed and flakiness. Mean recovery time 10 s each.
	sys := churnlb.System{
		Nodes: []churnlb.Node{
			{ProcRate: 2.0}, // dedicated server
			{ProcRate: 0.8, FailRate: 0.05, RecRate: 0.10}, // laptop
			{ProcRate: 1.2, FailRate: 0.08, RecRate: 0.10}, // desktop
			{ProcRate: 1.6, FailRate: 0.12, RecRate: 0.10}, // workstation, often preempted
		},
		DelayPerTask: 0.02,
	}
	load := []int{160, 0, 0, 0} // the batch lands at the server

	fmt.Println("160 tasks at the dedicated server; volunteers churn randomly")
	fmt.Println()
	for _, tc := range []struct {
		name string
		spec churnlb.PolicySpec
	}{
		{"keep everything local (no balancing)", churnlb.PolicySpec{Kind: churnlb.PolicyNone}},
		{"LBP-2: react at failure instants", churnlb.PolicySpec{Kind: churnlb.PolicyLBP2, K: 1}},
		{"LBP-1-multi: preempt, availability-weighted", churnlb.PolicySpec{Kind: churnlb.PolicyLBP1Multi, K: 1}},
		{"LBP-1-multi with attenuated gain K=0.8", churnlb.PolicySpec{Kind: churnlb.PolicyLBP1Multi, K: 0.8}},
	} {
		est, err := churnlb.MonteCarlo(sys, tc.spec, load, 3000, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s %7.2f s ±%.2f\n", tc.name, est.Mean, est.CI95)
	}
	fmt.Println()
	fmt.Println("offloading to flaky volunteers still wins — but the preemptive share")
	fmt.Println("must be weighted by availability, exactly as eq. (8) weights LBP-2.")
}
