// Cluster: runs the paper's actual system architecture — per-CE
// application/communication/LB-failure layers — as concurrent goroutines
// communicating over real loopback UDP (23-byte state packets) and TCP
// (task payloads), with the matrix-multiplication application doing real
// arithmetic. The paper's ~2-minute wireless-LAN experiment replays in
// about a quarter of a second of wall time.
//
// Run: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"churnlb"
)

func main() {
	sys := churnlb.PaperSystem()
	spec := churnlb.PolicySpec{Kind: churnlb.PolicyLBP2, K: 1}

	start := time.Now()
	res, err := churnlb.RunTestbed(sys, spec, []int{100, 60}, 2006, churnlb.TestbedOptions{
		TimeScale:   500,  // 500 virtual seconds per wall second
		UseSockets:  true, // UDP state exchange + TCP task transfer on loopback
		RealCompute: true, // actually multiply the rows
		Trace:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("completed %d+%d tasks in %.2f virtual seconds (%.2f s wall)\n",
		res.Processed[0], res.Processed[1], res.CompletionTime, wall.Seconds())
	fmt.Printf("failures: %d, recoveries: %d\n", res.Failures, res.Recoveries)
	fmt.Printf("balancing transfers: %d bundles, %d tasks over TCP\n", res.TransfersSent, res.TasksTransferred)
	fmt.Printf("state packets over UDP: %d\n", res.StatePackets)

	// Print a coarse queue-evolution timeline (the shape of Fig. 4).
	fmt.Println("\n   t(s)  node1 node2")
	step := res.CompletionTime / 20
	next := 0.0
	for _, tp := range res.Trace {
		if tp.Time >= next {
			fmt.Printf("%7.1f  %5d %5d\n", tp.Time, tp.Queues[0], tp.Queues[1])
			next += step
		}
	}
}
