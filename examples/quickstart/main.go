// Quickstart: the paper's headline workflow in a dozen lines.
//
// We take the system measured in the paper (a 1.08 tasks/s node and a
// 1.86 tasks/s node, both failing about every 20 s), ask the analytical
// model for the optimal preemptive transfer, and confirm the prediction
// with a Monte-Carlo study of the exact stochastic model.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"churnlb"
)

func main() {
	sys := churnlb.PaperSystem()
	const m0, m1 = 100, 60

	// 1. Failure-aware optimum (LBP-1): how much should the loaded node
	//    ship at t = 0, given that either node may fail and recover?
	opt, err := churnlb.OptimizeLBP1(sys, m0, m1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload (%d,%d): send %d tasks (K=%.2f) from node %d -> node %d\n",
		m0, m1, opt.Tasks, opt.K, opt.Sender, 1-opt.Sender)
	fmt.Printf("predicted mean completion: %.2f s\n", opt.Mean)

	// 2. The same question if nodes never failed — the gain is larger:
	//    uncertainty calls for weaker balancing (the paper's key insight).
	optNF, err := churnlb.OptimizeLBP1(sys.NoFailure(), m0, m1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without failures the optimum would be K=%.2f (mean %.2f s)\n", optNF.K, optNF.Mean)

	// 3. Validate the prediction by simulating the stochastic system.
	est, err := churnlb.MonteCarlo(sys,
		churnlb.PolicySpec{Kind: churnlb.PolicyLBP1, K: opt.K, Sender: opt.Sender},
		[]int{m0, m1}, 4000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte-Carlo check: %.2f s ±%.2f (95%% CI, %d replications)\n", est.Mean, est.CI95, est.N)

	// 4. And compare against the reactive policy LBP-2 at this small
	//    transfer delay, where reacting to failures wins.
	k2, err := churnlb.LBP2InitialGain(sys, m0, m1)
	if err != nil {
		log.Fatal(err)
	}
	est2, err := churnlb.MonteCarlo(sys,
		churnlb.PolicySpec{Kind: churnlb.PolicyLBP2, K: k2}, []int{m0, m1}, 4000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LBP-2 (K=%.2f): %.2f s ±%.2f — reacting beats preempting at δ=0.02 s\n",
		k2, est2.Mean, est2.CI95)
}
